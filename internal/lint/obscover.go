package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// Obscover cross-checks struct counters against the observability registry
// (DESIGN.md §8): for every type that exposes both a Snapshot() method and
// a RegisterObs(*obs.Registry, prefix) method, every uint64 counter the
// Snapshot reads off the receiver must also be read by some registration
// inside RegisterObs (or a module function it calls). A counter visible in
// the typed snapshot but absent from the registry "goes dark": it never
// reaches telemetry, and no output diff will ever notice.
//
// Counter discovery follows the repo's registration idiom — closures that
// read fields directly through the receiver (`func() uint64 { return
// t.lookups }`), which is also what keeps registration allocation-free on
// the hot path. Reads laundered through intermediate locals are invisible
// to the check; write the direct form.
//
// Struct-typed and array-typed fields are expanded to their uint64 leaves
// (`stats.Faults`, `hits[...]`), so a new field added to a Stats struct is
// flagged until its registration exists. Types with only one of the two
// methods are out of scope: their counters are surfaced through a parent
// component's snapshot instead.
var Obscover = &Analyzer{
	Name: "obscover",
	Doc:  "flag Snapshot counters missing from the type's RegisterObs registrations",
	Run:  runObscover,
}

func runObscover(p *Pass) {
	// Pair up Snapshot and RegisterObs methods by receiver type.
	type methods struct {
		snapshot, register *ast.FuncDecl
	}
	byType := map[*types.Named]*methods{}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			if fd.Name.Name != "Snapshot" && fd.Name.Name != "RegisterObs" {
				continue
			}
			named := recvNamed(p, fd)
			if named == nil {
				continue
			}
			m := byType[named]
			if m == nil {
				m = &methods{}
				byType[named] = m
			}
			if fd.Name.Name == "Snapshot" {
				m.snapshot = fd
			} else if registersOnRegistry(p, fd) {
				m.register = fd
			}
		}
	}
	// Deterministic order over receiver types.
	var names []*types.Named
	for n := range byType {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		return names[i].Obj().Name() < names[j].Obj().Name()
	})

	for _, named := range names {
		m := byType[named]
		if m.snapshot == nil || m.register == nil {
			continue
		}
		leaves := snapshotLeaves(p, named, m.snapshot)
		if len(leaves) == 0 {
			continue
		}
		read := registeredReads(p, named, m.register)
		for _, leaf := range leaves {
			if read[leaf] {
				continue
			}
			p.Reportf(m.register.Name.Pos(),
				"counter %s.%s is exposed by Snapshot but never read by a RegisterObs registration: it goes dark in the registry (register it, or drop it from the snapshot)",
				named.Obj().Name(), leaf)
		}
	}
}

// recvNamed resolves a method's receiver to its named type.
func recvNamed(p *Pass, fd *ast.FuncDecl) *types.Named {
	obj, ok := p.Pkg.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return nil
	}
	recv := obj.Type().(*types.Signature).Recv()
	if recv == nil {
		return nil
	}
	t := recv.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// registersOnRegistry reports whether fd looks like the observability
// registration hook: its first parameter is a *Registry.
func registersOnRegistry(p *Pass, fd *ast.FuncDecl) bool {
	obj, ok := p.Pkg.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	params := obj.Type().(*types.Signature).Params()
	if params.Len() == 0 {
		return false
	}
	ptr, ok := params.At(0).Type().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	return ok && named.Obj().Name() == "Registry"
}

// snapshotLeaves returns the uint64 counter leaves the Snapshot method
// exposes: every receiver field it references, expanded through structs
// and arrays down to uint64 leaves, as dotted paths.
func snapshotLeaves(p *Pass, named *types.Named, snapshot *ast.FuncDecl) []string {
	strct, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	roots := map[string]bool{}
	ast.Inspect(snapshot.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		base, path := fieldPathOf(p, named, sel)
		if base && len(path) > 0 {
			roots[path[0]] = true
		}
		return true
	})
	var leaves []string
	for i := 0; i < strct.NumFields(); i++ {
		f := strct.Field(i)
		if !roots[f.Name()] {
			continue
		}
		expandLeaves(f.Type(), f.Name(), &leaves)
	}
	sort.Strings(leaves)
	return leaves
}

// expandLeaves appends the dotted path of every uint64 leaf reachable from
// t by value: uint64 itself, arrays (indexing is path-transparent), and
// struct fields.
func expandLeaves(t types.Type, path string, out *[]string) {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		if u.Kind() == types.Uint64 {
			*out = append(*out, path)
		}
	case *types.Array:
		expandLeaves(u.Elem(), path, out)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			expandLeaves(f.Type(), path+"."+f.Name(), out)
		}
	}
}

// registeredReads collects the dotted receiver-field paths read inside
// RegisterObs — closures included — and inside every module function it
// transitively calls.
func registeredReads(p *Pass, named *types.Named, register *ast.FuncDecl) map[string]bool {
	read := map[string]bool{}
	graph := p.Module.Graph

	collect := func(body ast.Node, pkg *Package) {
		pass := &Pass{Module: p.Module, Pkg: pkg}
		ast.Inspect(body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if base, path := fieldPathOf(pass, named, sel); base && len(path) > 0 {
				read[strings.Join(path, ".")] = true
			}
			return true
		})
	}
	collect(register.Body, p.Pkg)

	// Follow module-internal calls out of RegisterObs (helper methods that
	// register on the same receiver).
	obj, _ := p.Pkg.Info.Defs[register.Name].(*types.Func)
	start := graph.NodeOf(obj)
	if start == nil {
		return read
	}
	seen := map[*FuncNode]bool{start: true}
	queue := []*FuncNode{start}
	for len(queue) > 0 {
		node := queue[0]
		queue = queue[1:]
		for _, site := range node.Calls {
			callee := graph.NodeOf(site.Callee)
			if callee == nil || seen[callee] || callee.Decl.Body == nil {
				continue
			}
			seen[callee] = true
			collect(callee.Decl.Body, callee.Pkg)
			queue = append(queue, callee)
		}
	}
	return read
}

// fieldPathOf resolves a selector expression to a field path rooted at a
// value of the given named type: (true, ["stats","Faults"]) for
// k.stats.Faults with k a *Kernel. Index expressions are transparent
// (h.hits[lv] reads "hits"); any non-field link (method call, package
// qualifier, or a base of another type) yields (false, nil).
func fieldPathOf(p *Pass, named *types.Named, sel *ast.SelectorExpr) (onRecv bool, path []string) {
	// The selector itself must be a field selection.
	selection, ok := p.Pkg.Info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return false, nil
	}
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.Ident:
		t := p.TypeOf(x)
		if t == nil {
			return false, nil
		}
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if n, ok := t.(*types.Named); ok && n.Obj() == named.Obj() {
			return true, []string{sel.Sel.Name}
		}
	case *ast.SelectorExpr:
		if ok, inner := fieldPathOf(p, named, x); ok {
			return true, append(inner, sel.Sel.Name)
		}
	case *ast.IndexExpr:
		if xs, ok := ast.Unparen(x.X).(*ast.SelectorExpr); ok {
			if ok, inner := fieldPathOf(p, named, xs); ok {
				return true, append(inner, sel.Sel.Name)
			}
		}
	}
	return false, nil
}
