package lint

import (
	"go/ast"
	"strings"
)

// Noclock flags time.Now and time.Since calls outside the two places
// wall-clock reads are legitimate: the engine's timing hook
// (engine.StartTimer, which stamps scenario Events) and the cmd/ front
// ends that print progress to a human. Anywhere else, a clock read is
// host-machine state leaking into simulation code — exactly the class of
// hidden input that makes two runs with identical seeds diverge.
var Noclock = &Analyzer{
	Name: "noclock",
	Doc:  "flag wall-clock reads outside the engine timing hook and cmd/",
	Run:  runNoclock,
}

// noclockExempt reports whether a package may read the wall clock
// directly: the engine package (it owns the timing hook) and command
// front ends (human-facing progress output).
func noclockExempt(relDir string) bool {
	return relDir == "internal/engine" || relDir == "cmd" || strings.HasPrefix(relDir, "cmd/")
}

func runNoclock(p *Pass) {
	if noclockExempt(p.Pkg.RelDir) {
		return
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			if name != "Now" && name != "Since" {
				return true
			}
			pkg := p.PkgNameOf(sel)
			if pkg == nil || pkg.Path() != "time" {
				return true
			}
			p.Reportf(call.Pos(),
				"time.%s in simulation code: route wall-clock measurement through engine.StartTimer (the engine's timing hook) or annotate //ptmlint:allow(noclock) reason",
				name)
			return true
		})
	}
}
