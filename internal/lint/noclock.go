package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Noclock flags wall-clock reads reaching simulation code. time.Now and
// time.Since are legitimate in exactly two places: the engine package
// (engine.StartTimer, the timing hook that stamps scenario Events) and the
// cmd/ front ends that print progress to a human. Anywhere else, a clock
// read is host-machine state leaking into simulation code — exactly the
// class of hidden input that makes two runs with identical seeds diverge.
//
// The check is interprocedural (ISSUE 7): beyond direct calls, any call
// from simulation code into a module function that transitively reaches
// time.Now/time.Since is flagged at the call site, with the witness chain
// in the message. The engine package is a taint barrier — calling
// engine.StartTimer (or any engine API) is the sanctioned way to measure —
// so taint cannot be laundered through a one-level helper, but the hook
// itself stays usable.
var Noclock = &Analyzer{
	Name: "noclock",
	Doc:  "flag wall-clock reads (direct or via module helpers) outside the engine timing hook and cmd/",
	Run:  runNoclock,
}

// noclockExempt reports whether a package may read the wall clock
// directly: the engine package (it owns the timing hook) and command
// front ends (human-facing progress output).
func noclockExempt(relDir string) bool {
	return relDir == "internal/engine" || relDir == "cmd" || strings.HasPrefix(relDir, "cmd/")
}

// isClockCall reports whether the call site invokes time.Now or
// time.Since.
func isClockCall(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
		return false
	}
	return fn.Name() == "Now" || fn.Name() == "Since"
}

func runNoclock(p *Pass) {
	if noclockExempt(p.Pkg.RelDir) {
		return
	}
	// Direct reads: a whole-file scan, so clock calls outside function
	// bodies (package-level variable initializers) are caught too.
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			if name != "Now" && name != "Since" {
				return true
			}
			pkg := p.PkgNameOf(sel)
			if pkg == nil || pkg.Path() != "time" {
				return true
			}
			p.Reportf(call.Pos(),
				"time.%s in simulation code: route wall-clock measurement through engine.StartTimer (the engine's timing hook) or annotate //ptmlint:allow(noclock) reason",
				name)
			return true
		})
	}

	// Transitive reads: flag calls into module functions that reach the
	// clock through any chain of non-exempt helpers.
	chains := p.Module.noclockTaint()
	for _, node := range p.Module.Graph.Nodes() {
		if node.Pkg != p.Pkg {
			continue
		}
		for _, site := range node.Calls {
			chain, tainted := chains[site.Callee]
			if !tainted {
				continue
			}
			last := chain[0]
			p.Reportf(site.Pos,
				"call to %s reaches time.%s (%s → time.%s): wall-clock state must not leak into simulation code; measure through engine.StartTimer",
				site.Callee.Name(), last.Site.Callee.Name(), ChainString(chain), last.Site.Callee.Name())
		}
	}
}

// noclockTaint computes (once per module, memoized) which module functions
// transitively reach a wall-clock read, with the engine and cmd/ packages
// as barriers.
func (m *Module) noclockTaint() map[*types.Func][]TaintStep {
	if m.clockChains == nil {
		m.clockChains = m.Graph.Taint(
			func(site CallSite) bool { return isClockCall(site.Callee) },
			func(node *FuncNode) bool { return noclockExempt(node.Pkg.RelDir) },
		)
	}
	return m.clockChains
}
