package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// Errwrap enforces the typed-error contracts (*OOMError, *ConfigError,
// the io and package sentinels): error chains must survive wrapping and
// be inspected structurally, never by identity or concrete type.
//
// Three rules:
//
//   - fmt.Errorf with an error-typed operand must pair it with %w, so the
//     wrapped error stays matchable by errors.Is/As. A %v or %s on an
//     error flattens the chain — callers can no longer detect the
//     sentinel underneath.
//   - ==/!= against an error value (other than the nil literal) must be
//     errors.Is: direct identity comparison misses wrapped errors.
//     switch statements over an error value are the same comparison.
//   - type assertions and type switches on an error-typed expression must
//     be errors.As, for the same reason.
var Errwrap = &Analyzer{
	Name: "errwrap",
	Doc:  "enforce %w wrapping and errors.Is/As over identity comparison and type assertion",
	Run:  runErrwrap,
}

func runErrwrap(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				// An `Is(target error) bool` method is the errors.Is
				// protocol itself: identity comparison against the
				// sentinel inside it is the intended implementation,
				// not a violation.
				if isIsMethod(p, n) {
					return false
				}
			case *ast.CallExpr:
				checkErrorfWrap(p, n)
			case *ast.BinaryExpr:
				if n.Op == token.EQL || n.Op == token.NEQ {
					checkErrCompare(p, n)
				}
			case *ast.SwitchStmt:
				checkErrSwitch(p, n)
			case *ast.TypeAssertExpr:
				// n.Type == nil is the `x.(type)` of a type switch,
				// handled below with a message naming the construct.
				if n.Type != nil && isErrorType(p.TypeOf(n.X)) {
					p.Reportf(n.Pos(),
						"type assertion on error %s: use errors.As so wrapped errors still match",
						types.ExprString(n.X))
				}
			case *ast.TypeSwitchStmt:
				if x := typeSwitchOperand(n); x != nil && isErrorType(p.TypeOf(x)) {
					p.Reportf(n.Switch,
						"type switch on error %s: use errors.As so wrapped errors still match",
						types.ExprString(x))
				}
			}
			return true
		})
	}
}

// checkErrorfWrap flags fmt.Errorf calls whose error-typed operands are
// formatted with anything but %w.
func checkErrorfWrap(p *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Errorf" {
		return
	}
	pkg := p.PkgNameOf(sel)
	if pkg == nil || pkg.Path() != "fmt" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	format, ok := constFormat(p, call.Args[0])
	if !ok {
		return
	}
	verbs := formatVerbs(format)
	for i, arg := range call.Args[1:] {
		if !isErrorType(p.TypeOf(arg)) {
			continue
		}
		if i < len(verbs) && verbs[i] == 'w' {
			continue
		}
		verb := "no verb"
		if i < len(verbs) {
			verb = "%" + string(verbs[i])
		}
		p.Reportf(arg.Pos(),
			"fmt.Errorf formats error %s with %s: use %%w so the chain stays matchable by errors.Is/As",
			types.ExprString(arg), verb)
	}
}

// checkErrCompare flags ==/!= where one operand is error-typed and the
// other is not the untyped nil literal.
func checkErrCompare(p *Pass, bin *ast.BinaryExpr) {
	if !isErrorType(p.TypeOf(bin.X)) && !isErrorType(p.TypeOf(bin.Y)) {
		return
	}
	if isNilLiteral(p, bin.X) || isNilLiteral(p, bin.Y) {
		return
	}
	p.Reportf(bin.OpPos,
		"error compared with %s: use errors.Is so wrapped errors still match",
		bin.Op)
}

// checkErrSwitch flags `switch err { case sentinel: }` — each case with a
// non-nil expression is an identity comparison in disguise.
func checkErrSwitch(p *Pass, sw *ast.SwitchStmt) {
	if sw.Tag == nil || !isErrorType(p.TypeOf(sw.Tag)) {
		return
	}
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if !isNilLiteral(p, e) {
				p.Reportf(e.Pos(),
					"switch over error %s compares by identity: use errors.Is so wrapped errors still match",
					types.ExprString(sw.Tag))
			}
		}
	}
}

// isIsMethod reports whether fd is a method Is(error) bool — the hook
// the errors.Is chain walk consults.
func isIsMethod(p *Pass, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || fd.Name.Name != "Is" {
		return false
	}
	obj, ok := p.Pkg.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig := obj.Type().(*types.Signature)
	return sig.Params().Len() == 1 && sig.Results().Len() == 1 &&
		types.Identical(sig.Params().At(0).Type(), types.Universe.Lookup("error").Type()) &&
		types.Identical(sig.Results().At(0).Type(), types.Typ[types.Bool])
}

// typeSwitchOperand extracts the switched expression of a type switch.
func typeSwitchOperand(n *ast.TypeSwitchStmt) ast.Expr {
	var x ast.Expr
	switch assign := n.Assign.(type) {
	case *ast.AssignStmt:
		if len(assign.Rhs) == 1 {
			if ta, ok := assign.Rhs[0].(*ast.TypeAssertExpr); ok {
				x = ta.X
			}
		}
	case *ast.ExprStmt:
		if ta, ok := assign.X.(*ast.TypeAssertExpr); ok {
			x = ta.X
		}
	}
	return x
}

// isErrorType reports whether t is the error interface or implements it
// (as a value or via pointer receiver on a named type's pointer).
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	if iface, ok := t.Underlying().(*types.Interface); ok {
		return iface.NumMethods() == 1 && iface.Method(0).Name() == "Error" &&
			iface.Method(0).Type().(*types.Signature).Params().Len() == 0
	}
	return types.Implements(t, errorInterface)
}

// errorInterface is the universe error interface type.
var errorInterface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isNilLiteral reports whether e is the predeclared nil.
func isNilLiteral(p *Pass, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := p.Pkg.Info.Uses[id].(*types.Nil)
	return isNil
}

// constFormat extracts a compile-time-constant format string.
func constFormat(p *Pass, e ast.Expr) (string, bool) {
	tv, ok := p.Pkg.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// formatVerbs returns the verb letter consumed by each successive operand
// of a Printf-style format string. Width/precision stars consume operands
// too and are returned as '*'; explicit argument indexes (%[n]d) disable
// the scan from that point (rare, and never used for error wrapping).
func formatVerbs(format string) []byte {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i >= len(format) {
			break
		}
		if format[i] == '%' {
			continue
		}
		// Flags, width, precision.
		for i < len(format) {
			c := format[i]
			if c == '[' {
				return verbs // explicit argument index: stop scanning
			}
			if c == '*' {
				verbs = append(verbs, '*')
				i++
				continue
			}
			if c == '#' || c == '+' || c == '-' || c == ' ' || c == '0' ||
				c == '.' || (c >= '0' && c <= '9') {
				i++
				continue
			}
			break
		}
		if i < len(format) {
			verbs = append(verbs, format[i])
		}
	}
	return verbs
}
