package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file is ptmlint's facts layer: a module-wide static call graph built
// once per Load, in the same dependency order the type checker uses, that
// the interprocedural analyzers (noclock, seedflow, deprflow, obscover)
// query. The graph is intentionally simple — direct static call edges only:
//
//   - a call through an interface method resolves to the interface method
//     object (no devirtualization), so dynamic dispatch does not propagate
//     facts;
//   - function values passed around as data are not edges (assigning
//     time.Now to a field and calling it later is invisible);
//   - calls inside a function literal are attributed to the enclosing
//     declared function, which is how closures actually execute.
//
// Those limits are acceptable because the contracts ptmlint enforces are
// about *code idiom*, not adversarial obfuscation: the failure mode being
// closed is the honest one-level helper that launders a wall-clock read or
// a global rand draw into the sim core (ISSUE 7), not reflection tricks.

// CallSite is one static call edge: the position of the call expression and
// the callee's type-checker object.
type CallSite struct {
	// Pos locates the call in the caller's body.
	Pos token.Pos
	// Callee is the resolved function or method object. For calls into
	// other modules (including the standard library) this is the imported
	// package's object; for interface calls it is the interface method.
	Callee *types.Func
}

// FuncNode is one declared function or method of the module, with its
// outgoing static call edges in source order.
type FuncNode struct {
	// Obj is the canonical type-checker object of the declaration.
	Obj *types.Func
	// Pkg is the package the declaration lives in.
	Pkg *Package
	// Decl is the syntax, body included (nil body for assembly stubs).
	Decl *ast.FuncDecl
	// Calls lists every resolved call expression in the body (function
	// literals included), in position order.
	Calls []CallSite
}

// CallGraph indexes every declared function of the module.
type CallGraph struct {
	nodes map[*types.Func]*FuncNode
	// ordered holds the nodes in deterministic order: packages in RelDir
	// order, declarations in position order — the iteration order every
	// graph query uses, so findings come out stable.
	ordered []*FuncNode
}

// buildGraph constructs the call graph. Called by Load after type checking,
// package by package in the already-sorted module order.
func (m *Module) buildGraph() {
	g := &CallGraph{nodes: make(map[*types.Func]*FuncNode)}
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &FuncNode{Obj: obj, Pkg: pkg, Decl: fd}
				if fd.Body != nil {
					ast.Inspect(fd.Body, func(n ast.Node) bool {
						call, ok := n.(*ast.CallExpr)
						if !ok {
							return true
						}
						if callee := calleeOf(pkg.Info, call); callee != nil {
							node.Calls = append(node.Calls, CallSite{Pos: call.Pos(), Callee: callee})
						}
						return true
					})
				}
				sort.Slice(node.Calls, func(i, j int) bool { return node.Calls[i].Pos < node.Calls[j].Pos })
				g.nodes[obj] = node
				g.ordered = append(g.ordered, node)
			}
		}
	}
	m.Graph = g
}

// calleeOf resolves the static callee of a call expression, or nil for
// calls through function values, conversions, and builtins.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// NodeOf returns the graph node declaring fn, or nil for functions declared
// outside the module (or not declared at all, e.g. interface methods).
func (g *CallGraph) NodeOf(fn *types.Func) *FuncNode { return g.nodes[fn] }

// Nodes returns every declared function in deterministic order.
func (g *CallGraph) Nodes() []*FuncNode { return g.ordered }

// TaintStep is one hop of a taint chain: the function whose body contains
// the call, and the call site it took toward the source.
type TaintStep struct {
	Fn   *types.Func
	Site CallSite
}

// Taint computes which module functions can reach a "source" call.
//
// source classifies a single call site as the fact origin (e.g. a call to
// time.Now). barrier marks functions whose implementations are sanctioned:
// a barrier function is never tainted, so taint does not propagate through
// it to callers (e.g. the engine package owns the timing hook, so calling
// into the engine never taints sim code).
//
// The result maps every tainted function to its witness chain: the source
// call site first, then one step per intermediate call, ending at a call
// inside the mapped function itself. Chains are deterministic — the DFS
// explores call sites in position order.
// The computation is a worklist fixpoint over reverse call edges, so taint
// is found even through call cycles (mutually recursive helpers).
func (g *CallGraph) Taint(source func(CallSite) bool, barrier func(*FuncNode) bool) map[*types.Func][]TaintStep {
	chains := make(map[*types.Func][]TaintStep, 8)

	// Reverse edges: callee object → caller nodes (with the call site),
	// built in deterministic node order.
	type revEdge struct {
		caller *FuncNode
		site   CallSite
	}
	callers := make(map[*types.Func][]revEdge)
	var queue []*FuncNode

	// Seed: every non-barrier function with a direct source call.
	for _, node := range g.ordered {
		if barrier(node) {
			continue
		}
		for _, site := range node.Calls {
			callers[site.Callee] = append(callers[site.Callee], revEdge{caller: node, site: site})
			if source(site) && chains[node.Obj] == nil {
				chains[node.Obj] = []TaintStep{{Fn: node.Obj, Site: site}}
				queue = append(queue, node)
			}
		}
	}

	// Propagate to callers until the set stops growing. Queue order is
	// deterministic (seeded and extended in node order), so the witness
	// chains are too.
	for len(queue) > 0 {
		node := queue[0]
		queue = queue[1:]
		for _, edge := range callers[node.Obj] {
			if chains[edge.caller.Obj] != nil || barrier(edge.caller) {
				continue
			}
			chain := append(append([]TaintStep{}, chains[node.Obj]...), TaintStep{Fn: edge.caller.Obj, Site: edge.site})
			chains[edge.caller.Obj] = chain
			queue = append(queue, edge.caller)
		}
	}
	return chains
}

// ChainString renders a taint chain as "f → g → h", outermost caller first,
// for finding messages.
func ChainString(chain []TaintStep) string {
	s := ""
	for i := len(chain) - 1; i >= 0; i-- {
		if s != "" {
			s += " → "
		}
		s += chain[i].Fn.Name()
	}
	return s
}
