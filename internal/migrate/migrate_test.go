package migrate_test

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"ptemagnet/internal/arch"
	"ptemagnet/internal/buddy"
	"ptemagnet/internal/guestos"
	"ptemagnet/internal/hostos"
	"ptemagnet/internal/migrate"
	"ptemagnet/internal/pagetable"
	"ptemagnet/internal/sim"
	"ptemagnet/internal/vm"
)

// tinyScale is small enough that the equivalence proof (which runs every
// workload twice) stays fast.
func tinyScale() sim.Scale {
	return sim.Scale{
		HostMemBytes:      64 << 20,
		GuestMemBytes:     32 << 20,
		DatasetBytes:      4 << 20,
		Accesses:          30_000,
		CorunnerFootprint: 2 << 20,
		LLCBytes:          128 << 10,
		L2Bytes:           64 << 10,
	}
}

func tinyScenario(policy guestos.AllocPolicy) sim.Scenario {
	return sim.Scenario{
		Benchmark: "pagerank",
		Corunners: []string{"stress-ng"},
		Policy:    policy,
		Scale:     tinyScale(),
		Seed:      42,
	}
}

// buildSource assembles the colocated source machine for a scenario.
func buildSource(t *testing.T, policy guestos.AllocPolicy) *vm.Machine {
	t.Helper()
	m, err := sim.BuildMachine(tinyScenario(policy))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// buildDestination assembles a destination host with one idle tenant. The
// quantum matches sim.BuildMachine's so the migrated guest's tasks
// interleave on the destination exactly as they would have on the source.
func buildDestination(t *testing.T, hostMemBytes uint64) *vm.Machine {
	t.Helper()
	idleMem := uint64(16 << 20)
	if idleMem > hostMemBytes/2 {
		idleMem = hostMemBytes / 2
	}
	m, err := vm.NewHost(vm.HostConfig{
		HostMemBytes: hostMemBytes,
		Quantum:      2,
		Guests:       []vm.GuestConfig{{MemBytes: idleMem, Seed: 99}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// mapping is one page of a process's guest-visible memory image.
type mapping struct {
	VA    arch.VirtAddr
	GPA   arch.PhysAddr
	Flags pagetable.Flags
}

// procImage is everything one guest process can observe about itself.
type procImage struct {
	PID      int
	Name     string
	RSS      uint64
	Mappings []mapping
}

// guestImage captures the guest-visible state of a guest: kernel counters,
// guest-physical allocator counters, executed accesses, and every
// process's va→gpa image. Host-side state (walker/TLB stats, cycle
// counts, host frame placement) is deliberately excluded — migration
// legitimately perturbs it.
type guestImage struct {
	Accesses   uint64
	Kernel     guestos.Stats
	GuestBuddy buddy.Stats
	Procs      []procImage
}

func imageOf(g *vm.Guest) guestImage {
	snap := g.Snapshot()
	img := guestImage{
		Accesses:   snap.Accesses,
		Kernel:     snap.Guest,
		GuestBuddy: snap.GuestBuddy,
	}
	for _, p := range g.Kernel().Processes() {
		pi := procImage{PID: p.PID(), Name: p.Name(), RSS: p.RSS()}
		p.PageTable().ForEachMapped(func(va arch.VirtAddr, gpa arch.PhysAddr, fl pagetable.Flags) bool {
			pi.Mappings = append(pi.Mappings, mapping{VA: va, GPA: gpa, Flags: fl})
			return true
		})
		img.Procs = append(img.Procs, pi)
	}
	return img
}

// TestMigrationEquivalence is the equivalence proof: a guest migrated at
// access count K and run to completion on the destination must be
// indistinguishable — to itself — from the same guest never migrated. The
// guest-visible image (kernel counters, guest-physical layout, every
// process's memory image) must DeepEqual; the host page table must hold
// exactly the image's pages.
func TestMigrationEquivalence(t *testing.T) {
	for _, policy := range []guestos.AllocPolicy{guestos.PolicyDefault, guestos.PolicyPTEMagnet} {
		t.Run(policy.String(), func(t *testing.T) {
			baseline := buildSource(t, policy)
			if err := baseline.Run(vm.RunOptions{}); err != nil {
				t.Fatal(err)
			}
			want := imageOf(baseline.Guests()[0])

			src := buildSource(t, policy)
			const k = 10_000
			if err := src.Run(vm.RunOptions{StopAtAccesses: k}); err != nil {
				t.Fatal(err)
			}
			if src.PendingPrimaries() == 0 {
				t.Fatal("source finished before the migration point; shrink K")
			}
			dst := buildDestination(t, 128<<20)
			g := src.Guests()[0]
			rep, err := migrate.MigrateCtx(context.Background(), g, dst, migrate.Options{
				RoundAccesses: 2000,
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep.PagesInitial == 0 || rep.PagesCopied < rep.PagesInitial {
				t.Errorf("implausible report: %+v", rep)
			}
			if g.Machine() != dst || !g.Alive() {
				t.Fatal("guest not adopted by destination")
			}
			if err := dst.Run(vm.RunOptions{}); err != nil {
				t.Fatal(err)
			}
			got := imageOf(g)
			if !reflect.DeepEqual(want, got) {
				t.Errorf("guest-visible state diverged after migration\nwant: %+v\ngot:  %+v", want, got)
			}

			// The destination EPT must back exactly the pages the guest
			// faulted in — the copied image plus post-migration faults,
			// never less.
			hostPT := g.HostVM().PageTable()
			for _, p := range got.Procs {
				for _, mp := range p.Mappings {
					if _, _, ok := hostPT.Translate(arch.VirtAddr(mp.GPA.PageBase())); !ok {
						t.Fatalf("guest page %#x of %s has no host backing on the destination", uint64(mp.GPA), p.Name)
					}
				}
			}

			// The source kept a frozen placeholder.
			ph := src.Guests()[0]
			if ph.Alive() {
				t.Error("source slot still alive after migration")
			}
			if snap := ph.Snapshot(); snap.Accesses == 0 || snap.Accesses > want.Accesses {
				t.Errorf("placeholder froze implausible access count %d", snap.Accesses)
			}
		})
	}
}

// TestMigrateCancelMidRound cancels from the OnRound hook and verifies the
// typed error, the errors.Is chain, and that the aborted migration left
// both machines intact: the source guest finishes normally afterwards and
// the destination holds no leftover VM or frames.
func TestMigrateCancelMidRound(t *testing.T) {
	src := buildSource(t, guestos.PolicyDefault)
	if err := src.Run(vm.RunOptions{StopAtAccesses: 8000}); err != nil {
		t.Fatal(err)
	}
	dst := buildDestination(t, 128<<20)
	freeBefore := dst.Host().Memory().FreeFrames()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rounds := 0
	_, err := migrate.MigrateCtx(ctx, src.Guests()[0], dst, migrate.Options{
		RoundAccesses: 1000,
		OnRound: func(round, dirtyPages int) {
			rounds = round
			if round == 2 {
				cancel()
			}
		},
	})
	if err == nil {
		t.Fatal("cancelled migration succeeded")
	}
	var me *migrate.MigrateError
	if !errors.As(err, &me) {
		t.Fatalf("error is %T, want *MigrateError", err)
	}
	if me.Phase != "precopy" || me.Round != 2 {
		t.Errorf("failure at phase %q round %d, want precopy round 2", me.Phase, me.Round)
	}
	if !errors.Is(err, context.Canceled) {
		t.Error("error does not match context.Canceled")
	}
	if errors.Is(err, migrate.ErrDestinationOOM) {
		t.Error("cancellation matched ErrDestinationOOM")
	}
	if rounds != 2 {
		t.Errorf("OnRound saw %d rounds, want 2", rounds)
	}

	// Destination fully rolled back: the idle tenant's VM is the only one,
	// and every copied frame coalesced back.
	if n := len(dst.Host().VMs()); n != 1 {
		t.Errorf("destination has %d VMs after abort, want 1", n)
	}
	if free := dst.Host().Memory().FreeFrames(); free != freeBefore {
		t.Errorf("destination leaked frames: %d free, want %d", free, freeBefore)
	}

	// Source undisturbed: the guest runs to completion.
	g := src.Guests()[0]
	if !g.Alive() || g.Machine() != src {
		t.Fatal("source guest damaged by aborted migration")
	}
	if err := src.Run(vm.RunOptions{}); err != nil {
		t.Fatalf("source run after aborted migration: %v", err)
	}
}

// TestMigrateDestinationOOM migrates onto a host too small for the image
// and verifies the typed OOM surface plus full rollback.
func TestMigrateDestinationOOM(t *testing.T) {
	src := buildSource(t, guestos.PolicyDefault)
	if err := src.Run(vm.RunOptions{StopAtAccesses: 8000}); err != nil {
		t.Fatal(err)
	}
	// 4MB of host memory cannot hold the ~4MB dataset plus co-runner and
	// page-table nodes.
	dst := buildDestination(t, 4<<20)
	freeBefore := dst.Host().Memory().FreeFrames()

	_, err := migrate.MigrateCtx(context.Background(), src.Guests()[0], dst, migrate.Options{})
	if err == nil {
		t.Fatal("migration onto exhausted host succeeded")
	}
	if !errors.Is(err, migrate.ErrDestinationOOM) {
		t.Errorf("error does not match ErrDestinationOOM: %v", err)
	}
	if !errors.Is(err, hostos.ErrOutOfMemory) {
		t.Errorf("error does not match hostos.ErrOutOfMemory: %v", err)
	}
	var me *migrate.MigrateError
	if !errors.As(err, &me) {
		t.Fatalf("error is %T, want *MigrateError", err)
	}

	if n := len(dst.Host().VMs()); n != 1 {
		t.Errorf("destination has %d VMs after OOM, want 1", n)
	}
	if free := dst.Host().Memory().FreeFrames(); free != freeBefore {
		t.Errorf("destination leaked frames: %d free, want %d", free, freeBefore)
	}
	g := src.Guests()[0]
	if !g.Alive() || g.Machine() != src {
		t.Fatal("source guest damaged by failed migration")
	}
	if err := src.Run(vm.RunOptions{}); err != nil {
		t.Fatalf("source run after failed migration: %v", err)
	}
}

// TestMigrateFrozenRegistryRefused pins the loud contract: machines whose
// counter registries are built cannot take part in a migration.
func TestMigrateFrozenRegistryRefused(t *testing.T) {
	src := buildSource(t, guestos.PolicyDefault)
	if err := src.Run(vm.RunOptions{StopAtAccesses: 4000}); err != nil {
		t.Fatal(err)
	}
	dst := buildDestination(t, 128<<20)
	dst.Registry()
	if _, err := migrate.MigrateCtx(context.Background(), src.Guests()[0], dst, migrate.Options{}); err == nil {
		t.Fatal("migration onto a registry-frozen destination succeeded")
	}
	// The refusal happened in validation: nothing was built on dst.
	if n := len(dst.Host().VMs()); n != 1 {
		t.Errorf("destination has %d VMs after refusal, want 1", n)
	}
}
