// Package migrate implements deterministic pre-copy live migration of a
// guest between two simulated machines.
//
// The protocol is the classic one hypervisors build on hardware dirty-page
// tracking (Intel PML — see hostos's dirty log): an initial full copy of
// every backed guest-physical page, then iterative rounds in which the
// guest keeps running on the source while the pages it dirtied since the
// last round are re-shipped, and finally — once a round's dirty set falls
// under a threshold, a round cap is hit, or the guest has nothing left to
// run — a stop-and-copy of the residue with the guest paused. The guest
// then detaches from the source (frames return to the source buddy) and is
// adopted by the destination, whose buddy allocator re-allocated the image
// frame by frame.
//
// Everything is keyed to the machines' deterministic access counts: rounds
// advance the source by Options.RoundAccesses executed accesses, and
// downtime is priced in access-units rather than wall-clock (DESIGN.md
// §10), so a migration is as reproducible as the runs around it.
//
// What the paper's question looks like here: the destination host PT is
// indexed by guest-physical addresses, so whether the migrated guest's
// PTEs pack or scatter on the destination depends only on the gva→gpa
// layout the guest carries with it. A PTEMagnet guest arrives with its
// reservation-packed layout intact; a baseline guest arrives with the
// fragmentation its co-runners inflicted, and re-allocation on a fresh
// host does not heal it.
package migrate

import (
	"context"
	"errors"
	"fmt"

	"ptemagnet/internal/arch"
	"ptemagnet/internal/hostos"
	"ptemagnet/internal/obs"
	"ptemagnet/internal/pagetable"
	"ptemagnet/internal/vm"
)

// ErrDestinationOOM matches (under errors.Is) any migration failure caused
// by the destination host running out of physical memory for the copied
// image.
var ErrDestinationOOM = errors.New("migrate: destination host out of physical memory")

// MigrateError is the typed failure of a migration attempt, wrapping the
// cause with the phase and pre-copy round it struck in. It is
// errors.Is-compatible in both directions: the cause chain unwraps (so
// context.Canceled and hostos.ErrOutOfMemory match), and a destination OOM
// additionally matches ErrDestinationOOM.
type MigrateError struct {
	// Phase names the stage that failed: "validate", "precopy",
	// "stop-and-copy", or "handoff".
	Phase string
	// Round is the pre-copy round the failure struck in (0 = the initial
	// full copy).
	Round int
	// Err is the underlying cause.
	Err error
}

// Error describes the failure.
func (e *MigrateError) Error() string {
	return fmt.Sprintf("migrate: %s failed (round %d): %v", e.Phase, e.Round, e.Err)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *MigrateError) Unwrap() error { return e.Err }

// Is maps destination-OOM causes onto the ErrDestinationOOM sentinel.
func (e *MigrateError) Is(target error) bool {
	return target == ErrDestinationOOM && errors.Is(e.Err, hostos.ErrOutOfMemory)
}

// Options tune a migration. The zero value selects the documented
// defaults.
type Options struct {
	// RoundAccesses is how many machine-global accesses the source
	// executes between pre-copy rounds — the guest keeps running while its
	// memory is copied, which is the defining property of pre-copy. Zero
	// selects 5000.
	RoundAccesses uint64
	// StopThresholdPages ends pre-copy when a round drains at most this
	// many dirty pages: the residue is small enough to ship with the guest
	// paused. Zero selects 64.
	StopThresholdPages int
	// MaxRounds caps pre-copy rounds so a write-heavy guest that never
	// converges still migrates (with a bigger stop-and-copy). Zero
	// selects 8.
	MaxRounds int
	// DirtyLogEntries sizes the source's PML-style dirty-log buffer. Zero
	// selects hostos.DefaultDirtyLogEntries (512, the PML buffer size).
	DirtyLogEntries int
	// CopyCostAccesses prices one shipped page in access-units for the
	// downtime metric (DESIGN.md §10: the simulator's clock is the access
	// count, so downtime is the guest execution forgone while paused).
	// Zero selects 1.
	CopyCostAccesses uint64
	// OnRound, if non-nil, observes each pre-copy round right after its
	// dirty-log drain, before the round's pages ship: the 1-based round
	// number and the drained page count. Tests use it to cancel
	// mid-round.
	OnRound func(round, dirtyPages int)
	// Faults, if non-nil, injects deterministic migration failures
	// (faults.Plan implements it); nil on the production path.
	Faults FaultInjector
}

// FaultInjector injects migration-phase faults for deterministic fault
// testing. Both methods are consulted once per pre-copy round, right
// after the round's dirty-log drain: a non-nil DestOOM return fails the
// round as a destination allocation failure (the error surfaces wrapped
// in an *hostos.OOMError, so it matches ErrDestinationOOM), and a
// non-nil CancelAtRound return aborts the migration with that cause.
type FaultInjector interface {
	DestOOM(round int) error
	CancelAtRound(round int) error
}

func (o Options) withDefaults() Options {
	if o.RoundAccesses == 0 {
		o.RoundAccesses = 5000
	}
	if o.StopThresholdPages == 0 {
		o.StopThresholdPages = 64
	}
	if o.MaxRounds == 0 {
		o.MaxRounds = 8
	}
	if o.CopyCostAccesses == 0 {
		o.CopyCostAccesses = 1
	}
	return o
}

// Report is the migration's accounting, the counters a hypervisor's
// migration daemon exports.
type Report struct {
	// Rounds is the number of pre-copy rounds executed after the initial
	// full copy.
	Rounds int
	// PagesCopied is every page shipment: initial copy + re-copies of
	// dirtied pages + the final stop-and-copy.
	PagesCopied uint64
	// PagesInitial is the round-0 full-copy size.
	PagesInitial uint64
	// PagesRedirtied counts shipments of pages the destination already
	// held — the wasted work write-heavy guests inflict on pre-copy.
	PagesRedirtied uint64
	// StopCopyPages is the size of the final paused copy; downtime is
	// proportional to it.
	StopCopyPages uint64
	// DowntimeAccesses is StopCopyPages × Options.CopyCostAccesses: the
	// guest execution forgone while paused, in the simulator's
	// deterministic clock.
	DowntimeAccesses uint64
	// PrecopyAccesses is how many accesses the source machine executed
	// during the pre-copy rounds (guest still running).
	PrecopyAccesses uint64
	// LogOverflows counts rounds whose dirty log overflowed and fell back
	// to a full EPT rescan.
	LogOverflows uint64
}

// RegisterObs registers the report's counters on r under prefix, in the
// order the fields are declared. The report is a post-hoc record, not a
// live component, so it has no Snapshot/Delta pair — register it once the
// migration is done, alongside the destination machine's registry.
func (r *Report) RegisterObs(reg *obs.Registry, prefix string) {
	reg.Counter(prefix+"rounds", func() uint64 { return uint64(r.Rounds) })
	reg.Counter(prefix+"pages_copied", func() uint64 { return r.PagesCopied })
	reg.Counter(prefix+"pages_initial", func() uint64 { return r.PagesInitial })
	reg.Counter(prefix+"pages_redirtied", func() uint64 { return r.PagesRedirtied })
	reg.Counter(prefix+"stopcopy_pages", func() uint64 { return r.StopCopyPages })
	reg.Counter(prefix+"downtime_accesses", func() uint64 { return r.DowntimeAccesses })
	reg.Counter(prefix+"precopy_accesses", func() uint64 { return r.PrecopyAccesses })
	reg.Counter(prefix+"log_overflows", func() uint64 { return r.LogOverflows })
}

// Migrate is MigrateCtx with a background context.
func Migrate(src *vm.Guest, dst *vm.Machine, opts Options) (Report, error) {
	return MigrateCtx(context.Background(), src, dst, opts)
}

// MigrateCtx live-migrates src onto dst with pre-copy semantics and
// returns the migration's accounting. On success src is a live guest of
// dst (same kernel, same walker with cumulative counters, same tasks,
// vCPUs re-pinned) and its old machine keeps a frozen placeholder in its
// Guests() slot. On failure the returned error is a *MigrateError; unless
// the failure struck in the final hand-off, the guest is left running
// undisturbed on the source and the half-built destination VM is torn down
// (its frames coalesce back into dst's buddy allocator), so a failed or
// cancelled migration can simply be retried.
//
// ctx cancellation is honored between pre-copy rounds and between a
// round's drain and its copy — never inside a copy, so the destination
// page table is always consistent at the failure point.
func MigrateCtx(ctx context.Context, src *vm.Guest, dst *vm.Machine, opts Options) (Report, error) {
	opts = opts.withDefaults()
	var rep Report
	fail := func(phase string, round int, err error) (Report, error) {
		return rep, &MigrateError{Phase: phase, Round: round, Err: err}
	}
	if src == nil || !src.Alive() {
		return fail("validate", 0, errors.New("source guest is not alive"))
	}
	srcM := src.Machine()
	if srcM == nil {
		return fail("validate", 0, errors.New("source guest is detached"))
	}
	if srcM == dst {
		return fail("validate", 0, errors.New("source and destination are the same machine"))
	}
	// Frozen registries make the hand-off impossible; refuse before
	// touching any state so the failure is always clean.
	if srcM.RegistryBuilt() || dst.RegistryBuilt() {
		return fail("validate", 0, errors.New("a machine with a built counter registry cannot migrate guests; build registries after migration"))
	}
	srcVM := src.HostVM()
	dstVM, err := dst.Host().CreateVMWithLevels(srcVM.GuestMemBytes(), srcVM.PageTable().Levels())
	if err != nil {
		return fail("validate", 0, err)
	}
	// abort tears down the half-built destination VM and stops write
	// tracking, leaving both machines exactly as they were.
	abort := func() {
		srcVM.DisableDirtyLogging()
		dst.Host().DestroyVM(dstVM)
	}

	// ship copies one guest-physical page to the destination. Re-shipping
	// a page the destination already holds rewrites contents, not the
	// mapping — it costs a copy, not a frame.
	ship := func(gpa arch.PhysAddr) error {
		if dstVM.Mapped(gpa) {
			rep.PagesRedirtied++
			rep.PagesCopied++
			return nil
		}
		if err := dstVM.MapMigratedPage(gpa); err != nil {
			return err
		}
		rep.PagesCopied++
		return nil
	}

	// Round 0: full copy of every page with host backing, in ascending
	// guest-physical order, with write tracking armed first so no store is
	// missed between the copy and the first round.
	srcVM.EnableDirtyLogging(opts.DirtyLogEntries)
	var shipErr error
	srcVM.PageTable().ForEachMapped(func(va arch.VirtAddr, _ arch.PhysAddr, _ pagetable.Flags) bool {
		shipErr = ship(arch.PhysAddr(va))
		return shipErr == nil
	})
	if shipErr != nil {
		abort()
		return fail("precopy", 0, shipErr)
	}
	rep.PagesInitial = rep.PagesCopied

	// Iterative pre-copy: run, drain, re-ship; stop when the dirty set is
	// small, the round budget is spent, or the guest has no runnable work
	// left (then the dirty set can only shrink to nothing).
	var residue []arch.PhysAddr
	for round := 1; ; round++ {
		if err := ctx.Err(); err != nil {
			abort()
			return fail("precopy", round, err)
		}
		if srcM.PendingPrimaries() > 0 {
			before := srcM.TotalAccesses()
			if err := srcM.RunWith(ctx, vm.WithStopAtAccesses(before+opts.RoundAccesses)); err != nil {
				abort()
				return fail("precopy", round, err)
			}
			rep.PrecopyAccesses += srcM.TotalAccesses() - before
		}
		dirty, rescan := srcVM.DrainDirtyLog()
		if rescan {
			rep.LogOverflows++
		}
		rep.Rounds = round
		if opts.OnRound != nil {
			opts.OnRound(round, len(dirty))
		}
		if opts.Faults != nil {
			// Injected destination OOM wears the same OOMError the organic
			// path produces, so ErrDestinationOOM (and, through Unwrap,
			// the injected-fault root) match identically either way.
			if cause := opts.Faults.DestOOM(round); cause != nil {
				abort()
				return fail("precopy", round, &hostos.OOMError{VM: dstVM.ID(), NeedPages: 1, Err: cause})
			}
			if cause := opts.Faults.CancelAtRound(round); cause != nil {
				abort()
				return fail("precopy", round, cause)
			}
		}
		if err := ctx.Err(); err != nil {
			abort()
			return fail("precopy", round, err)
		}
		if len(dirty) <= opts.StopThresholdPages || round >= opts.MaxRounds || srcM.PendingPrimaries() == 0 {
			residue = dirty
			break
		}
		for _, gpa := range dirty {
			if err := ship(gpa); err != nil {
				abort()
				return fail("precopy", round, err)
			}
		}
	}

	// Stop-and-copy: the guest is paused (the source simply does not run)
	// while the residue ships, plus any page that gained host backing
	// since its copy round without ever being written — read-faulted pages
	// never enter the dirty log, so a final ascending sweep catches them.
	copiedBefore := rep.PagesCopied
	for _, gpa := range residue {
		if err := ship(gpa); err != nil {
			abort()
			return fail("stop-and-copy", rep.Rounds, err)
		}
	}
	srcVM.PageTable().ForEachMapped(func(va arch.VirtAddr, _ arch.PhysAddr, _ pagetable.Flags) bool {
		if !dstVM.Mapped(arch.PhysAddr(va)) {
			shipErr = ship(arch.PhysAddr(va))
		}
		return shipErr == nil
	})
	if shipErr != nil {
		abort()
		return fail("stop-and-copy", rep.Rounds, shipErr)
	}
	rep.StopCopyPages = rep.PagesCopied - copiedBefore
	rep.DowntimeAccesses = rep.StopCopyPages * opts.CopyCostAccesses
	srcVM.DisableDirtyLogging()

	// Hand-off: detach from the source (frames coalesce back into the
	// source buddy — the physmem owner transfer), adopt on the destination
	// (the walker rebind flushes every TLB and walk-cache dimension).
	if err := srcM.DetachGuest(src); err != nil {
		abort()
		return fail("handoff", rep.Rounds, err)
	}
	if err := dst.AttachGuest(src, dstVM); err != nil {
		// The source VM is already destroyed; the guest cannot be
		// restored. This only fires on caller contract violations
		// (e.g. a frozen destination registry), checked before any state
		// was touched on well-formed calls.
		return fail("handoff", rep.Rounds, err)
	}
	return rep, nil
}
