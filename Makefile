GO ?= go

.PHONY: all build vet lint test race bench bench-smoke experiments

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# ptmlint enforces the determinism and address-hygiene contracts of
# DESIGN.md §6 (detrange, noclock, seedflow, archconst). Blocking: any
# finding fails the build.
lint:
	$(GO) run ./cmd/ptmlint

test:
	$(GO) test ./...

# The engine's determinism contract and the simulator's per-scenario
# isolation are the two properties the race detector guards; the heavy
# simulation packages elsewhere are race-free by construction (no
# goroutines) and would only slow this down.
race:
	$(GO) test -race ./internal/engine ./internal/sim

# The Pipeline* benchmarks track the batched hot path against the legacy
# one-access adapter at three layers (workload step, walker fast path, full
# machine loop). BENCH_pipeline.json is committed so future changes have a
# perf trajectory to diff against.
bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .
	$(GO) test -bench='Pipeline' -benchtime=2s -run=^$$ -json \
		./internal/workload ./internal/nested ./internal/vm . \
		> BENCH_pipeline.json

# Compile-and-run rot check for the bench harness; single iteration, no
# timing claims.
bench-smoke:
	$(GO) test -bench='Pipeline' -benchtime=1x -run=^$$ \
		./internal/workload ./internal/nested ./internal/vm .

experiments:
	$(GO) run ./cmd/experiments -quick
