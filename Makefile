GO ?= go

.PHONY: all build vet lint test race bench bench-smoke experiments obs-smoke chaos-smoke overcommit-smoke

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# ptmlint enforces the determinism and address-hygiene contracts of
# DESIGN.md §6 (detrange, noclock, seedflow, archconst, statshape,
# deprflow, obscover, errwrap, goscope). Blocking: any finding fails the
# build. The binary is built first so the timeout guards the analysis
# itself: whole-module type checking plus the call graph must stay under
# 60 seconds, keeping the pre-commit loop usable.
LINT_BIN ?= $(or $(TMPDIR),/tmp)/ptmlint
lint:
	$(GO) build -o $(LINT_BIN) ./cmd/ptmlint
	timeout 60 $(LINT_BIN)

test:
	$(GO) test ./...

# The engine's determinism contract, the simulator's per-scenario
# isolation, and the multi-tenant/migration machine tests (whose scenarios
# run under the parallel engine) are the properties the race detector
# guards; the heavy simulation packages elsewhere are race-free by
# construction (no goroutines) and would only slow this down.
race:
	$(GO) test -race ./internal/engine ./internal/sim ./internal/vm ./internal/migrate ./internal/faults ./internal/balloon

# The Pipeline* benchmarks track the batched hot path against the legacy
# one-access adapter at three layers (workload step, walker fast path, full
# machine loop). BENCH_pipeline.json is committed so future changes have a
# perf trajectory to diff against.
bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .
	$(GO) test -bench='Pipeline' -benchtime=2s -run=^$$ -json \
		./internal/workload ./internal/nested ./internal/vm . \
		> BENCH_pipeline.json

# Compile-and-run rot check for the bench harness; single iteration, no
# timing claims.
bench-smoke:
	$(GO) test -bench='Pipeline' -benchtime=1x -run=^$$ \
		./internal/workload ./internal/nested ./internal/vm .

experiments:
	$(GO) run ./cmd/experiments -quick

# Telemetry determinism check (DESIGN.md §8): a quick sweep serial and
# with 4 workers must emit byte-identical RunRecord JSONL once
# elapsed_ms — the one sanctioned nondeterministic field — is masked.
# Covers the single-VM table1 set, the multi-tenant sweep (cross-VM
# round-robin and churn events), and the migration sweep (pre-copy
# rounds, guest hand-off, the migrate.* counter group), which also diffs
# stdout with the wall-clock timing line masked.
OBS_SMOKE_DIR ?= $(or $(TMPDIR),/tmp)
obs-smoke:
	$(GO) run ./cmd/experiments -quick -exp table1 -parallel 1 -telemetry $(OBS_SMOKE_DIR)/obs-serial.jsonl
	$(GO) run ./cmd/experiments -quick -exp table1 -parallel 4 -telemetry $(OBS_SMOKE_DIR)/obs-parallel.jsonl
	sed -E 's/"elapsed_ms":[0-9]+/"elapsed_ms":0/' $(OBS_SMOKE_DIR)/obs-serial.jsonl > $(OBS_SMOKE_DIR)/obs-serial.masked.jsonl
	sed -E 's/"elapsed_ms":[0-9]+/"elapsed_ms":0/' $(OBS_SMOKE_DIR)/obs-parallel.jsonl > $(OBS_SMOKE_DIR)/obs-parallel.masked.jsonl
	diff $(OBS_SMOKE_DIR)/obs-serial.masked.jsonl $(OBS_SMOKE_DIR)/obs-parallel.masked.jsonl
	$(GO) run ./cmd/experiments -quick -exp multitenant -parallel 1 -telemetry $(OBS_SMOKE_DIR)/obs-mt-serial.jsonl
	$(GO) run ./cmd/experiments -quick -exp multitenant -parallel 4 -telemetry $(OBS_SMOKE_DIR)/obs-mt-parallel.jsonl
	sed -E 's/"elapsed_ms":[0-9]+/"elapsed_ms":0/' $(OBS_SMOKE_DIR)/obs-mt-serial.jsonl > $(OBS_SMOKE_DIR)/obs-mt-serial.masked.jsonl
	sed -E 's/"elapsed_ms":[0-9]+/"elapsed_ms":0/' $(OBS_SMOKE_DIR)/obs-mt-parallel.jsonl > $(OBS_SMOKE_DIR)/obs-mt-parallel.masked.jsonl
	diff $(OBS_SMOKE_DIR)/obs-mt-serial.masked.jsonl $(OBS_SMOKE_DIR)/obs-mt-parallel.masked.jsonl
	$(GO) run ./cmd/experiments -quick -exp migration -parallel 1 -telemetry $(OBS_SMOKE_DIR)/obs-mig-serial.jsonl > $(OBS_SMOKE_DIR)/obs-mig-serial.out
	$(GO) run ./cmd/experiments -quick -exp migration -parallel 4 -telemetry $(OBS_SMOKE_DIR)/obs-mig-parallel.jsonl > $(OBS_SMOKE_DIR)/obs-mig-parallel.out
	sed -E 's/"elapsed_ms":[0-9]+/"elapsed_ms":0/' $(OBS_SMOKE_DIR)/obs-mig-serial.jsonl > $(OBS_SMOKE_DIR)/obs-mig-serial.masked.jsonl
	sed -E 's/"elapsed_ms":[0-9]+/"elapsed_ms":0/' $(OBS_SMOKE_DIR)/obs-mig-parallel.jsonl > $(OBS_SMOKE_DIR)/obs-mig-parallel.masked.jsonl
	diff $(OBS_SMOKE_DIR)/obs-mig-serial.masked.jsonl $(OBS_SMOKE_DIR)/obs-mig-parallel.masked.jsonl
	sed -E 's/^    \([0-9.]+s\)$$/    (time)/' $(OBS_SMOKE_DIR)/obs-mig-serial.out > $(OBS_SMOKE_DIR)/obs-mig-serial.masked.out
	sed -E 's/^    \([0-9.]+s\)$$/    (time)/' $(OBS_SMOKE_DIR)/obs-mig-parallel.out > $(OBS_SMOKE_DIR)/obs-mig-parallel.masked.out
	diff $(OBS_SMOKE_DIR)/obs-mig-serial.masked.out $(OBS_SMOKE_DIR)/obs-mig-parallel.masked.out
	@echo "obs-smoke: telemetry identical for 1 vs 4 workers (table1 + multitenant + migration)"

# Chaos determinism check (DESIGN.md §11): the fault-injection sweep —
# with a nonzero fault plan, injected host OOMs, retries, and
# mid-migration faults — must emit byte-identical stdout and RunRecord
# JSONL (faults.* and retry.* counters included) serial and with 4
# workers, once elapsed_ms and the wall-clock timing line are masked.
chaos-smoke:
	$(GO) run ./cmd/experiments -quick -exp chaos -parallel 1 -telemetry $(OBS_SMOKE_DIR)/chaos-serial.jsonl > $(OBS_SMOKE_DIR)/chaos-serial.out
	$(GO) run ./cmd/experiments -quick -exp chaos -parallel 4 -telemetry $(OBS_SMOKE_DIR)/chaos-parallel.jsonl > $(OBS_SMOKE_DIR)/chaos-parallel.out
	sed -E 's/"elapsed_ms":[0-9]+/"elapsed_ms":0/' $(OBS_SMOKE_DIR)/chaos-serial.jsonl > $(OBS_SMOKE_DIR)/chaos-serial.masked.jsonl
	sed -E 's/"elapsed_ms":[0-9]+/"elapsed_ms":0/' $(OBS_SMOKE_DIR)/chaos-parallel.jsonl > $(OBS_SMOKE_DIR)/chaos-parallel.masked.jsonl
	diff $(OBS_SMOKE_DIR)/chaos-serial.masked.jsonl $(OBS_SMOKE_DIR)/chaos-parallel.masked.jsonl
	sed -E 's/^    \([0-9.]+s\)$$/    (time)/' $(OBS_SMOKE_DIR)/chaos-serial.out > $(OBS_SMOKE_DIR)/chaos-serial.masked.out
	sed -E 's/^    \([0-9.]+s\)$$/    (time)/' $(OBS_SMOKE_DIR)/chaos-parallel.out > $(OBS_SMOKE_DIR)/chaos-parallel.masked.out
	diff $(OBS_SMOKE_DIR)/chaos-serial.masked.out $(OBS_SMOKE_DIR)/chaos-parallel.masked.out
	@echo "chaos-smoke: fault-injected sweep identical for 1 vs 4 workers"

# Overcommit determinism check (DESIGN.md §12): the ballooned sweep —
# watermark sampling, victim selection, reservation-breaking reclaim and
# swap-out under 1.25×–2× oversubscription — must emit byte-identical
# stdout and RunRecord JSONL (balloon.* counters included) serial and
# with 4 workers, once elapsed_ms and the wall-clock timing line are
# masked.
overcommit-smoke:
	$(GO) run ./cmd/experiments -quick -exp overcommit -parallel 1 -telemetry $(OBS_SMOKE_DIR)/oc-serial.jsonl > $(OBS_SMOKE_DIR)/oc-serial.out
	$(GO) run ./cmd/experiments -quick -exp overcommit -parallel 4 -telemetry $(OBS_SMOKE_DIR)/oc-parallel.jsonl > $(OBS_SMOKE_DIR)/oc-parallel.out
	sed -E 's/"elapsed_ms":[0-9]+/"elapsed_ms":0/' $(OBS_SMOKE_DIR)/oc-serial.jsonl > $(OBS_SMOKE_DIR)/oc-serial.masked.jsonl
	sed -E 's/"elapsed_ms":[0-9]+/"elapsed_ms":0/' $(OBS_SMOKE_DIR)/oc-parallel.jsonl > $(OBS_SMOKE_DIR)/oc-parallel.masked.jsonl
	diff $(OBS_SMOKE_DIR)/oc-serial.masked.jsonl $(OBS_SMOKE_DIR)/oc-parallel.masked.jsonl
	sed -E 's/^    \([0-9.]+s\)$$/    (time)/' $(OBS_SMOKE_DIR)/oc-serial.out > $(OBS_SMOKE_DIR)/oc-serial.masked.out
	sed -E 's/^    \([0-9.]+s\)$$/    (time)/' $(OBS_SMOKE_DIR)/oc-parallel.out > $(OBS_SMOKE_DIR)/oc-parallel.masked.out
	diff $(OBS_SMOKE_DIR)/oc-serial.masked.out $(OBS_SMOKE_DIR)/oc-parallel.masked.out
	@echo "overcommit-smoke: ballooned sweep identical for 1 vs 4 workers"
