GO ?= go

.PHONY: all build vet lint test race bench experiments

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# ptmlint enforces the determinism and address-hygiene contracts of
# DESIGN.md §6 (detrange, noclock, seedflow, archconst). Blocking: any
# finding fails the build.
lint:
	$(GO) run ./cmd/ptmlint

test:
	$(GO) test ./...

# The engine's determinism contract and the simulator's per-scenario
# isolation are the two properties the race detector guards; the heavy
# simulation packages elsewhere are race-free by construction (no
# goroutines) and would only slow this down.
race:
	$(GO) test -race ./internal/engine ./internal/sim

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

experiments:
	$(GO) run ./cmd/experiments -quick
