// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation, regenerating the measurement and reporting the
// headline quantity as a custom metric. Run with
//
//	go test -bench=. -benchmem
//
// Benchmarks use the quick scale so a full -bench=. pass stays in minutes;
// cmd/experiments runs the same code at the calibrated default scale and
// EXPERIMENTS.md records those numbers.
package ptemagnet_test

import (
	"context"
	"testing"

	"ptemagnet"
)

const benchSeed = 11

func benchScale() ptemagnet.Scale { return ptemagnet.QuickScale() }

// benchEngine runs each experiment's scenarios through a GOMAXPROCS-sized
// worker pool; the engine's determinism contract keeps every reported
// metric identical to a serial run.
var benchEngine = ptemagnet.NewEngine(0)

func benchCtx() context.Context { return context.Background() }

// BenchmarkTable1_FragmentationEffects regenerates Table 1 (§3.3): pagerank
// colocated with stress-ng versus standalone on the default kernel.
func BenchmarkTable1_FragmentationEffects(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := ptemagnet.RunTable1Ctx(benchCtx(), benchEngine, benchScale(), benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		slowdown := float64(r.Colocated.Task.SteadyCycles)/float64(r.Isolation.Task.SteadyCycles) - 1
		b.ReportMetric(slowdown*100, "slowdown_%")
		b.ReportMetric(r.Colocated.Task.Frag.Mean, "frag_colocated")
		b.ReportMetric(r.Isolation.Task.Frag.Mean, "frag_isolation")
	}
}

// BenchmarkFig5_HostPTFragmentation regenerates Figure 5: host-PT
// fragmentation per benchmark with the objdet co-runner, default versus
// PTEMagnet. (Shares runs with Figure 6; the reported metrics are the
// fragmentation means.)
func BenchmarkFig5_HostPTFragmentation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		def, mag, err := ptemagnet.RunScenarioPair(ptemagnet.Scenario{
			Benchmark: "pagerank", Corunners: []string{"objdet"},
			Scale: benchScale(), Seed: benchSeed,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(def.Task.Frag.Mean, "frag_default")
		b.ReportMetric(mag.Task.Frag.Mean, "frag_ptemagnet")
	}
}

// BenchmarkFig6_SpeedupWithObjdet regenerates Figure 6: PTEMagnet's
// performance improvement with the objdet co-runner, geomean across the
// full benchmark suite.
func BenchmarkFig6_SpeedupWithObjdet(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := ptemagnet.RunObjdetSuiteCtx(benchCtx(), benchEngine, benchScale(), benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.GeomeanSpeedup, "geomean_speedup_%")
		max := 0.0
		for _, e := range r.Entries {
			if e.SpeedupPct > max {
				max = e.SpeedupPct
			}
		}
		b.ReportMetric(max, "max_speedup_%")
	}
}

// BenchmarkFig7_SpeedupWithCombination regenerates Figure 7: PTEMagnet's
// improvement under the full Table 3 co-runner combination.
func BenchmarkFig7_SpeedupWithCombination(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := ptemagnet.RunCombinationSuiteCtx(benchCtx(), benchEngine, benchScale(), benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.GeomeanSpeedup, "geomean_speedup_%")
	}
}

// BenchmarkTable4_HardwareMetrics regenerates Table 4 (§6.3): pagerank +
// objdet, PTEMagnet versus default, hardware-counter changes.
func BenchmarkTable4_HardwareMetrics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := ptemagnet.RunTable4Ctx(benchCtx(), benchEngine, benchScale(), benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		speedup := float64(r.Default.Task.SteadyCycles)/float64(r.Magnet.Task.SteadyCycles) - 1
		b.ReportMetric(speedup*100, "speedup_%")
		walkReduction := 1 - float64(r.Magnet.Walk.WalkCycles)/float64(r.Default.Walk.WalkCycles)
		b.ReportMetric(walkReduction*100, "walk_cycle_reduction_%")
	}
}

// BenchmarkSec62_ReservationWaste regenerates the §6.2 study for pagerank
// (real workload) and the sparse adversary.
func BenchmarkSec62_ReservationWaste(b *testing.B) {
	for i := 0; i < b.N; i++ {
		real, err := ptemagnet.RunScenario(ptemagnet.Scenario{
			Benchmark: "pagerank", Corunners: []string{"objdet"},
			Policy: ptemagnet.PolicyPTEMagnet,
			Scale:  benchScale(), Seed: benchSeed,
		})
		if err != nil {
			b.Fatal(err)
		}
		adv, err := ptemagnet.RunScenario(ptemagnet.Scenario{
			Benchmark: "sparse", Policy: ptemagnet.PolicyPTEMagnet,
			Scale: benchScale(), Seed: benchSeed,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*float64(real.UnusedMax)/float64(real.FootprintPages), "pagerank_waste_%")
		b.ReportMetric(100*float64(adv.UnusedMax)/float64(adv.FootprintPages), "adversary_waste_%")
	}
}

// BenchmarkSec64_AllocationLatency regenerates the §6.4 microbenchmark:
// touch every page of a huge array under both policies.
func BenchmarkSec64_AllocationLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := ptemagnet.RunSec64Ctx(benchCtx(), benchEngine, benchScale(), benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.ImprovementPct, "improvement_%")
		b.ReportMetric(float64(r.BuddyCallsDefault)/float64(r.BuddyCallsMagnet), "buddy_call_ratio")
	}
}

// BenchmarkAblation_Granularity sweeps the reservation group size, the §4.1
// design choice (8 pages = one cache block of PTEs).
func BenchmarkAblation_Granularity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := ptemagnet.RunGranularityCtx(benchCtx(), benchEngine, benchScale(), benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		for _, e := range r.Entries {
			if e.GroupPages == 8 {
				b.ReportMetric(e.Frag, "frag_at_8_pages")
				b.ReportMetric(e.SpeedupPct, "speedup_at_8_pages_%")
			}
		}
	}
}

// BenchmarkAblation_PaRTLocking compares fine-grained per-node locking
// against a coarse table lock under concurrent faults (§4.2).
func BenchmarkAblation_PaRTLocking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := ptemagnet.RunLockingAblation(8, 5000)
		b.ReportMetric(r.FineNsPerOp, "fine_ns/fault")
		b.ReportMetric(r.CoarseNsPerOp, "coarse_ns/fault")
	}
}

// BenchmarkAblation_ReclaimWatermark sweeps the §4.3 reclaim threshold.
func BenchmarkAblation_ReclaimWatermark(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := ptemagnet.RunReclaimSweepCtx(benchCtx(), benchEngine, benchScale(), benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Entries[0].ReclaimedReservations), "reclaimed_at_0.3")
		b.ReportMetric(float64(r.Entries[3].ReclaimedReservations), "reclaimed_at_0.9")
	}
}

// BenchmarkBaseline_CAPaging contrasts the best-effort CA-paging baseline
// (related work §7) with PTEMagnet as colocation pressure rises.
func BenchmarkBaseline_CAPaging(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := ptemagnet.RunCAPagingComparisonCtx(benchCtx(), benchEngine, benchScale(), benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		last := r.Entries[len(r.Entries)-1]
		b.ReportMetric(last.FragCA, "combo_frag_capaging")
		b.ReportMetric(last.FragMagnet, "combo_frag_ptemagnet")
	}
}

// BenchmarkBaseline_THP contrasts transparent huge pages (§2.3) with
// PTEMagnet across colocation levels.
func BenchmarkBaseline_THP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := ptemagnet.RunTHPComparisonCtx(benchCtx(), benchEngine, benchScale(), benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Entries[0].THPCoverage*100, "solo_thp_coverage_%")
		b.ReportMetric(r.Entries[len(r.Entries)-1].THPCoverage*100, "combo_thp_coverage_%")
	}
}

// stepOnly hides a Program's StepBatch so the machine must drive it through
// the one-access-per-batch compatibility adapter — the pre-batching path.
type stepOnly struct{ p ptemagnet.Program }

func (s stepOnly) Name() string                                    { return s.p.Name() }
func (s stepOnly) FootprintBytes() uint64                          { return s.p.FootprintBytes() }
func (s stepOnly) Setup(env ptemagnet.Env) error                   { return s.p.Setup(env) }
func (s stepOnly) Step(env ptemagnet.Env) (ptemagnet.Access, bool) { return s.p.Step(env) }
func (s stepOnly) InitDone() bool                                  { return s.p.InitDone() }

// benchPipeline runs a solo pagerank to completion through the public
// facade, optionally stripping the native StepBatch to force the adapter.
func benchPipeline(b *testing.B, legacy bool) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cfg := ptemagnet.DefaultMachineConfig()
		cfg.HostMemBytes = 256 << 20
		cfg.GuestMemBytes = 128 << 20
		cfg.Quantum = 256
		m, err := ptemagnet.NewMachine(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var p ptemagnet.Program = ptemagnet.NewPagerank(ptemagnet.GraphConfig{
			DatasetBytes: 8 << 20, Accesses: 200_000, Seed: benchSeed,
		})
		if legacy {
			p = stepOnly{p}
		}
		if _, err := m.AddTask(p, ptemagnet.RolePrimary); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := m.Run(ptemagnet.RunOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineFacadeBatched measures the redesigned hot path end to end
// through the public API: native batched generation into the batched
// machine loop.
func BenchmarkPipelineFacadeBatched(b *testing.B) { benchPipeline(b, false) }

// BenchmarkPipelineFacadeAdapter measures the same run with StepBatch
// hidden, forcing the legacy one-access-per-batch adapter for comparison.
func BenchmarkPipelineFacadeAdapter(b *testing.B) { benchPipeline(b, true) }

// BenchmarkExtension_FiveLevelPaging measures PTEMagnet under LA57
// five-level paging (the §2.5 migration: nested walks grow to 35 accesses).
func BenchmarkExtension_FiveLevelPaging(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := ptemagnet.RunFiveLevelComparisonCtx(benchCtx(), benchEngine, benchScale(), benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Entries[0].SpeedupMagnet, "speedup_4level_%")
		b.ReportMetric(r.Entries[1].SpeedupMagnet, "speedup_5level_%")
	}
}
